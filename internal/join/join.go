// Package join implements the paper's three parallel pointer-based join
// algorithms — nested loops, sort-merge, and the Grace variant — executing
// on the simulated memory-mapped machine.
//
// The algorithms never issue explicit I/O: they touch mapped addresses and
// all disk traffic arises from page faults and page replacement in the
// per-process pagers, exactly as in the paper's single-level store. Each
// partition Ri is driven by a process Rproci; each Si is served by a
// process Sproci that dereferences join attributes and places S objects in
// shared memory, with requests grouped through a buffer of size G to
// amortize context switches.
package join

import (
	"fmt"

	"mmjoin/internal/disk"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/pheap"
	"mmjoin/internal/relation"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
	"mmjoin/internal/trace"
	"mmjoin/internal/vm"
)

// Algorithm selects a join algorithm.
type Algorithm int

// Auto is a sentinel, not a runnable algorithm: it asks a planning
// front-end (the query service, or the shard router's per-shard
// planner) to choose among the runnable algorithms per execution.
// Request.Validate and the executors reject it.
const Auto Algorithm = -1

const (
	// NestedLoops is the parallel pointer-based nested loops join (§5).
	NestedLoops Algorithm = iota
	// SortMerge is the parallel pointer-based sort-merge join (§6).
	SortMerge
	// Grace is the parallel pointer-based Grace join variant (§7).
	Grace
	// HybridHash is a parallel pointer-based hybrid-hash join, the
	// extension the paper defers to future work: Grace plus a resident
	// range of S joined immediately during the partitioning passes.
	HybridHash
	// TraditionalGrace is a conventional value-based parallel Grace hash
	// join: the join attribute is an opaque key, S is not clustered on
	// it, and so both relations must be hash-partitioned — the baseline
	// quantifying what the pointer attribute saves.
	TraditionalGrace
	// IndexNL is the index-nested-loop join over the real store's
	// persistent per-partition B-trees: each R object's join attribute
	// probes S's index by a root-to-leaf descent, no transient probe
	// state. Real-store only (mstore); the simulator has no indexes.
	IndexNL
	// IndexMerge is the sorted-range merge join over the same indexes:
	// both sides' leaf chains are zipped partition-locally, MPSM-style,
	// with no global merge barrier. Real-store only (mstore).
	IndexMerge
)

func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case NestedLoops:
		return "nested-loops"
	case SortMerge:
		return "sort-merge"
	case Grace:
		return "grace"
	case HybridHash:
		return "hybrid-hash"
	case TraditionalGrace:
		return "traditional-grace"
	case IndexNL:
		return "index-nl"
	case IndexMerge:
		return "index-merge"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Params configures one join execution.
type Params struct {
	Workload *relation.Workload

	MRproc int64 // private memory per Rproc, bytes
	MSproc int64 // private memory per Sproc, bytes; 0 ⇒ same as MRproc
	G      int64 // shared request buffer size, bytes; 0 ⇒ one page

	// Stagger enables the phase offsets of pass 1 that eliminate disk
	// contention (§5.1). Disabling it yields the naive parallel variant
	// in which every Rproc walks the S partitions in the same order.
	Stagger bool
	// SyncPhases inserts a barrier after every pass-1 phase. Nested
	// loops runs unsynchronized by default (the paper measured ≤ 0.5%
	// difference); sort-merge and Grace always synchronize.
	SyncPhases bool

	// Sort-merge tuning; zero values select the paper's rules
	// (IRUN = M/(r+hp), NRUNABL = M/3B, NRUNLAST = M/2B).
	IRun, NRunABL, NRunLast int

	// Grace tuning; zero values select K = ⌈fuzz·|RSi|·r / M⌉ and
	// TSIZE ≈ bucket objects / 4.
	K, TSize int
	Fuzz     float64 // Grace hash-table overhead allowance; 0 ⇒ 1.2

	// RadixBits bounds the per-pass fan-out of the real store's radix
	// partitioning (mstore.JoinRequest.RadixBits); 0 ⇒ 8. The simulator
	// ignores it — the paper's machine scatters straight into K buckets —
	// but the planner forwards it to the model, which charges the extra
	// partitioning passes the executor runs once K exceeds 2^RadixBits.
	RadixBits int

	// Workers is the CPU parallelism of a real-store execution
	// (mstore.JoinRequest.Workers): the size of the morsel pool; 0 ⇒
	// GOMAXPROCS. The simulator ignores it — the paper's model has one
	// process per partition by construction — and the planner's cost
	// math never reads it: MRproc, K, and the resident fraction describe
	// how the data and memory are laid out, which is the same no matter
	// how many OS threads execute the morsels. Workers changes only
	// elapsed wall-clock time, never the I/O or memory the model counts.
	Workers int

	// Policy selects the pagers' replacement algorithm. The default LRU
	// approximates a mature Unix pager; FIFO approximates the "simple"
	// Dynix replacement of the paper's testbed and thrashes earlier.
	Policy vm.Policy

	// Trace, when non-nil, records per-process phase events.
	Trace *trace.Log

	// Metrics, when non-nil, receives the run's telemetry: disk and pager
	// gauges sampled every MetricsTick of virtual time, plus the same
	// phase events that go to Trace. MetricsTick 0 selects
	// metrics.DefaultTick.
	Metrics     *metrics.Registry
	MetricsTick sim.Time
}

// withDefaults fills derived defaults in place.
func (prm *Params) withDefaults(cfg machine.Config) error {
	if prm.Workload == nil {
		return fmt.Errorf("join: nil workload")
	}
	if prm.Workload.Spec.D != cfg.D {
		return fmt.Errorf("join: workload D=%d but machine D=%d", prm.Workload.Spec.D, cfg.D)
	}
	if prm.MRproc < int64(cfg.B()) {
		return fmt.Errorf("join: MRproc=%d smaller than one page (%d)", prm.MRproc, cfg.B())
	}
	if prm.MSproc == 0 {
		prm.MSproc = prm.MRproc
	}
	if prm.G == 0 {
		prm.G = int64(cfg.B())
	}
	if prm.Fuzz == 0 {
		prm.Fuzz = 1.2
	}
	return nil
}

// PhaseTime records when a named pass completed (max over Rprocs) and
// the machine-wide cumulative I/O at that point.
type PhaseTime struct {
	Name   string
	End    sim.Time
	Reads  int64 // cumulative disk reads when the last Rproc finished the pass
	Writes int64
}

// Result reports one join execution.
type Result struct {
	Algorithm Algorithm
	Elapsed   sim.Time   // completion time of the slowest Rproc
	PerProc   []sim.Time // per-Rproc completion times
	Phases    []PhaseTime

	Pairs     int64  // joined pairs produced
	Signature uint64 // order-independent join signature (sum of pair hashes)

	DiskReads, DiskWrites int64
	Faults, ZeroFills     int64
	DirtyEvicts           int64
	ContextSwitches       int64
	Heap                  pheap.Costs

	// Disk is the machine-wide disk accounting (seek, rotation, transfer,
	// and overhead service-time components, stall count).
	Disk disk.Stats
	// ReserveClamped counts vm.Reserve calls that were granted fewer
	// frames than requested (the run still completes, but memory-resident
	// structures were sized below the algorithm's plan).
	ReserveClamped int64

	// Parameter choices actually used (algorithm dependent; zero if n/a).
	IRun, NPass, LRun int
	K, TSize          int
}

// CheckInvariants verifies the conservation laws every execution must
// satisfy, regardless of algorithm, memory budget, policy, or reference
// distribution; the conformance suite asserts it across randomized
// configurations. Checked: the join output matches the workload's
// reference in-memory join (cardinality and order-independent
// signature); Elapsed is the maximum per-Rproc completion time; phase
// completion times and their I/O snapshots are within the run's totals;
// the disk accounting conserves (components sum to ServiceSum) and
// matches the read/write counters; and pager fault accounting is
// bounded by the disk (every non-zero-fill fault is a disk read, but
// the machine also reads outside the pagers, so faults − zero fills ≤
// disk reads).
func (r *Result) CheckInvariants(w *relation.Workload) error {
	wantSig, wantPairs := w.JoinSignature()
	if r.Pairs != wantPairs {
		return fmt.Errorf("join: %v produced %d pairs, reference join has %d",
			r.Algorithm, r.Pairs, wantPairs)
	}
	if r.Signature != wantSig {
		return fmt.Errorf("join: %v signature %#x != reference %#x",
			r.Algorithm, r.Signature, wantSig)
	}
	if len(r.PerProc) != w.Spec.D {
		return fmt.Errorf("join: %d per-proc times for D=%d", len(r.PerProc), w.Spec.D)
	}
	max := sim.Time(0)
	for i, t := range r.PerProc {
		if t <= 0 {
			return fmt.Errorf("join: Rproc%d completion %v not positive", i, t)
		}
		if t > max {
			max = t
		}
	}
	if r.Elapsed != max {
		return fmt.Errorf("join: Elapsed %v != max per-proc %v", r.Elapsed, max)
	}
	prev := PhaseTime{}
	for _, ph := range r.Phases {
		if ph.End < prev.End || ph.End > r.Elapsed {
			return fmt.Errorf("join: phase %q ends at %v outside [%v, %v]",
				ph.Name, ph.End, prev.End, r.Elapsed)
		}
		if ph.Reads < prev.Reads || ph.Reads > r.DiskReads ||
			ph.Writes < prev.Writes || ph.Writes > r.DiskWrites {
			return fmt.Errorf("join: phase %q I/O snapshot (%d r, %d w) not monotone within totals (%d r, %d w)",
				ph.Name, ph.Reads, ph.Writes, r.DiskReads, r.DiskWrites)
		}
		prev = ph
	}
	if err := r.Disk.CheckConservation(); err != nil {
		return fmt.Errorf("join: %v: %w", r.Algorithm, err)
	}
	if r.DiskReads != r.Disk.Reads || r.DiskWrites != r.Disk.Writes {
		return fmt.Errorf("join: counters (%d r, %d w) disagree with disk stats (%d r, %d w)",
			r.DiskReads, r.DiskWrites, r.Disk.Reads, r.Disk.Writes)
	}
	if r.Faults < 0 || r.ZeroFills < 0 || r.Faults < r.ZeroFills {
		return fmt.Errorf("join: fault accounting broken (faults %d, zero fills %d)",
			r.Faults, r.ZeroFills)
	}
	if r.Faults-r.ZeroFills > r.DiskReads {
		return fmt.Errorf("join: faults %d − zero fills %d exceed disk reads %d",
			r.Faults, r.ZeroFills, r.DiskReads)
	}
	return nil
}

// runner holds the shared state of one execution. The simulation kernel
// runs exactly one process at a time, so plain fields are safe.
type runner struct {
	m   *machine.Machine
	w   *relation.Workload
	prm Params
	d   int
	b   int64 // page size
	r   int64 // R object size
	s   int64 // S object size
	ptr int64 // S-pointer size

	segR, segS []*seg.Segment
	sReq       []*sim.Chan // request channel per Sproc

	rDone   int
	allRd   *sim.Cond
	phases  map[string]sim.Time
	phaseIO map[string][2]int64

	res Result
}

func newRunner(m *machine.Machine, prm Params) *runner {
	w := prm.Workload
	r := &runner{
		m: m, w: w, prm: prm,
		d:       w.Spec.D,
		b:       int64(m.Cfg.B()),
		r:       int64(w.Spec.RSize),
		s:       int64(w.Spec.SSize),
		ptr:     int64(w.Spec.PtrSize),
		allRd:   sim.NewCond("all-rprocs-done"),
		phases:  make(map[string]sim.Time),
		phaseIO: make(map[string][2]int64),
	}
	r.res.PerProc = make([]sim.Time, r.d)
	// The relations pre-exist on disk: Ri then Si at the start of each
	// drive, matching the paper's layout diagrams.
	for i := 0; i < r.d; i++ {
		r.segR = append(r.segR, m.Mgr[i].Preexisting(fmt.Sprintf("R%d", i), w.BytesR(i)))
		r.segS = append(r.segS, m.Mgr[i].Preexisting(fmt.Sprintf("S%d", i), w.BytesS(i)))
		r.sReq = append(r.sReq, sim.NewChan(fmt.Sprintf("sreq%d", i), 0))
	}
	return r
}

// gCap returns the number of (R object, pointer, S object) triples that
// fit in the shared buffer of size G.
func (r *runner) gCap() int {
	n := int(r.prm.G / (r.r + r.ptr + r.s))
	if n < 1 {
		n = 1
	}
	return n
}

// sRequest asks an Sproc to dereference a batch of join attributes and
// stage the S objects in shared memory.
type sRequest struct {
	ptrs  []relation.SPtr
	reply *sim.Chan
}

// newPager creates a pager with the run's replacement policy and attaches
// it to the metrics registry (a no-op when none is configured).
func (r *runner) newPager(name string, quota int64) *vm.Pager {
	pg := vm.NewWithPolicy(name, frames(quota, r.b), r.prm.Policy)
	pg.Instrument(r.prm.Metrics)
	return pg
}

// reserve pins frames for a memory-resident structure, recording whether
// the grant was clamped below the request, and returns the granted count
// (which is what must later be passed to Unreserve).
func (r *runner) reserve(p *sim.Proc, pg *vm.Pager, want int) int {
	granted := pg.Reserve(p, want)
	if granted < want {
		r.res.ReserveClamped++
	}
	return granted
}

// spawnSprocs starts the D S-partition server processes.
func (r *runner) spawnSprocs() {
	for j := 0; j < r.d; j++ {
		j := j
		pg := r.newPager(fmt.Sprintf("Sproc%d", j), r.prm.MSproc)
		r.m.K.Spawn(fmt.Sprintf("Sproc%d", j), func(p *sim.Proc) {
			for {
				msg := r.sReq[j].Recv(p)
				if msg == nil {
					return
				}
				req := msg.(*sRequest)
				// Dispatching the request costs one context switch.
				p.Advance(r.m.Cfg.CS)
				r.res.ContextSwitches++
				for _, sp := range req.ptrs {
					if int(sp.Part) != j {
						panic(fmt.Sprintf("join: Sproc%d asked for S%d object", j, sp.Part))
					}
					pg.Touch(p, r.segS[j], int64(sp.Index)*r.s, r.s, false)
				}
				// Copy the S objects into the shared buffer.
				p.Advance(r.m.Cfg.TransferPS(int64(len(req.ptrs)) * r.s))
				req.reply.Send(p, struct{}{})
			}
		})
	}
}

// stopSprocs shuts the servers down (called once all Rprocs finished).
func (r *runner) stopSprocs(p *sim.Proc) {
	for j := 0; j < r.d; j++ {
		r.sReq[j].Send(p, nil)
	}
}

// gBuffer groups join requests to one Sproc, flushing when G is full.
type gBuffer struct {
	r     *runner
	owner int // Rproc index (for the signature)
	part  int // target S partition
	reply *sim.Chan
	pend  []pendingJoin
	cap   int
}

type pendingJoin struct {
	x   int32 // R object index within its origin partition
	ri  int32 // origin partition of the R object
	ptr relation.SPtr
}

func (r *runner) newGBuffer(owner, part int) *gBuffer {
	return &gBuffer{
		r: r, owner: owner, part: part,
		reply: sim.NewChan(fmt.Sprintf("reply-r%d-s%d", owner, part), 0),
		cap:   r.gCap(),
	}
}

// add stages one R object and its join attribute in the shared buffer,
// flushing if the buffer fills. The copy into shared memory is paid here
// (the pointer is copied alongside the object so the Sproc need not know
// R's internal structure).
func (g *gBuffer) add(p *sim.Proc, ri, x int32, ptr relation.SPtr) {
	p.Advance(g.r.m.Cfg.TransferPS(g.r.r + g.r.ptr))
	g.pend = append(g.pend, pendingJoin{x: x, ri: ri, ptr: ptr})
	if len(g.pend) >= g.cap {
		g.flush(p)
	}
}

// flush exchanges the buffer with the Sproc and computes the joins.
// The exchange costs two context switches (to the Sproc and back).
func (g *gBuffer) flush(p *sim.Proc) {
	if len(g.pend) == 0 {
		return
	}
	ptrs := make([]relation.SPtr, len(g.pend))
	for i, pj := range g.pend {
		ptrs[i] = pj.ptr
	}
	g.r.sReq[g.part].Send(p, &sRequest{ptrs: ptrs, reply: g.reply})
	g.reply.Recv(p)
	p.Advance(g.r.m.Cfg.CS) // resume after the exchange
	g.r.res.ContextSwitches++
	for _, pj := range g.pend {
		g.r.res.Signature += relation.PairHash(pj.ri, pj.x, pj.ptr)
		g.r.res.Pairs++
	}
	g.pend = g.pend[:0]
}

// frames converts a byte quota to page frames (at least one).
func frames(bytes, b int64) int {
	n := int(bytes / b)
	if n < 1 {
		n = 1
	}
	return n
}

// rprocDone records an Rproc's completion and, from the last one, shuts
// down the servers and the machine.
func (r *runner) rprocDone(p *sim.Proc, i int) {
	r.res.PerProc[i] = p.Now()
	if p.Now() > r.res.Elapsed {
		r.res.Elapsed = p.Now()
	}
	r.rDone++
	if r.rDone == r.d {
		r.stopSprocs(p)
		r.collectStats()
		r.m.Shutdown(p)
	}
}

// markPhase records the latest completion time of a named pass and, when
// tracing, the per-process event.
func (r *runner) markPhase(p *sim.Proc, name string) {
	if p.Now() > r.phases[name] {
		r.phases[name] = p.Now()
		ds := r.m.DiskStats()
		r.phaseIO[name] = [2]int64{ds.Reads, ds.Writes}
	}
	r.prm.Trace.Add(p.Now(), p.Name(), name)
	r.prm.Metrics.Event(p.Now(), p.Name(), name)
}

func (r *runner) finishPhases(order []string) {
	for _, name := range order {
		if end, ok := r.phases[name]; ok {
			io := r.phaseIO[name]
			r.res.Phases = append(r.res.Phases, PhaseTime{
				Name: name, End: end, Reads: io[0], Writes: io[1],
			})
		}
	}
}

// collectStats folds disk counters into the result (pager stats are added
// by each algorithm as its pagers retire).
func (r *runner) collectStats() {
	ds := r.m.DiskStats()
	r.res.DiskReads = ds.Reads
	r.res.DiskWrites = ds.Writes
	r.res.Disk = ds
}

// addPagerStats accumulates a pager's counters into the result.
func (r *runner) addPagerStats(pg *vm.Pager) {
	st := pg.Stats()
	r.res.Faults += st.Faults
	r.res.ZeroFills += st.ZeroFills
	r.res.DirtyEvicts += st.DirtyEvicts
}

// subLayout computes, for Rproc i, the byte offset of each RPi,j
// sub-partition within the RPi temporary segment (j == i unused) and the
// segment's total size.
func (r *runner) subLayout(i int, counts [][]int) (offsets []int64, total int64) {
	offsets = make([]int64, r.d)
	for j := 0; j < r.d; j++ {
		if j == i {
			offsets[j] = -1
			continue
		}
		offsets[j] = total
		total += int64(counts[i][j]) * r.r
	}
	if total == 0 {
		total = 1 // keep segments non-empty
	}
	return offsets, total
}
