package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"mmjoin/internal/mstore"
	"mmjoin/internal/service"
)

func openCfg(rate float64, d time.Duration) Config {
	return Config{BaseURL: "http://unused", Seed: 42, Mode: OpenPoisson, Rate: rate, Duration: d}
}

// TestScheduleDeterministic: the whole open-loop schedule — arrival
// times, endpoint choices, Zipf keys, join algorithms — is a pure
// function of (Config, NR). Two builds must be identical; a different
// seed must diverge.
func TestScheduleDeterministic(t *testing.T) {
	cfg := openCfg(500, time.Second)
	cfg.Mix.LookupFraction = 0.6
	a, err := BuildSchedule(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	cfg.Seed = 43
	c, err := BuildSchedule(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestClientStreamDeterministic: closed-loop clients draw deterministic
// per-client op/think sequences, independent across client indices.
func TestClientStreamDeterministic(t *testing.T) {
	cfg := Config{BaseURL: "http://unused", Seed: 7, Mode: Closed}
	if err := cfg.withDefaults(); err != nil {
		t.Fatal(err)
	}
	type drawn struct {
		Op    Op
		Think time.Duration
	}
	draw := func(client, n int) []drawn {
		next := clientStream(cfg, 5000, client)
		out := make([]drawn, n)
		for i := range out {
			out[i].Op, out[i].Think = next()
		}
		return out
	}
	if !reflect.DeepEqual(draw(0, 200), draw(0, 200)) {
		t.Fatal("client 0 stream not deterministic")
	}
	if reflect.DeepEqual(draw(0, 200), draw(1, 200)) {
		t.Fatal("clients 0 and 1 drew identical streams")
	}
}

// TestScheduleShape: Poisson arrivals land near the offered rate with
// monotone timestamps inside the horizon; bursts arrive in
// BurstSize-sized spikes sharing one intended time; the mix fractions
// and Zipf skew show up in the drawn ops.
func TestScheduleShape(t *testing.T) {
	cfg := openCfg(1000, 2*time.Second)
	cfg.Mix.LookupFraction = 0.75
	ops, err := BuildSchedule(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Rate * cfg.Duration.Seconds()
	if n := float64(len(ops)); n < want*0.8 || n > want*1.2 {
		t.Fatalf("%d ops for offered %g", len(ops), want)
	}
	lookups, keyZero := 0, 0
	var prev time.Duration
	for _, op := range ops {
		if op.At < prev || op.At >= cfg.Duration {
			t.Fatalf("arrival %v out of order or past horizon", op.At)
		}
		prev = op.At
		if op.Kind == KindLookup {
			lookups++
			if op.Key == 0 {
				keyZero++
			}
			if op.Key < 0 || op.Key >= 9000 {
				t.Fatalf("key %d out of range", op.Key)
			}
		} else if op.Alg == "" {
			t.Fatal("join op without algorithm")
		}
	}
	if f := float64(lookups) / float64(len(ops)); f < 0.65 || f > 0.85 {
		t.Fatalf("lookup fraction %.2f, want ~0.75", f)
	}
	// Zipf rank 0 must dominate: far more than the uniform 1/9000 share.
	if float64(keyZero)/float64(lookups) < 0.05 {
		t.Fatalf("hottest key drawn %d/%d times — not Zipf-skewed", keyZero, lookups)
	}

	cfg.Mode = OpenBurst
	cfg.BurstSize = 32
	bops, err := BuildSchedule(cfg, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bops)%32 != 0 {
		t.Fatalf("%d burst ops, not a multiple of 32", len(bops))
	}
	for i := 0; i < len(bops); i += 32 {
		for j := 1; j < 32; j++ {
			if bops[i+j].At != bops[i].At {
				t.Fatalf("burst %d not simultaneous", i/32)
			}
		}
	}
}

// stubServer fakes just enough of mmdb serve for open-loop runner tests:
// /stats reports the database shape, /lookup answers 200 after a fixed
// service delay.
func stubServer(t *testing.T, nr, d int, delay time.Duration) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, r *http.Request) {
		st := service.Stats{DB: mstore.StoreStats{D: d, NR: nr, NS: nr}}
		json.NewEncoder(rw).Encode(st)
	})
	mux.HandleFunc("/lookup", func(rw http.ResponseWriter, r *http.Request) {
		time.Sleep(delay)
		rw.Write([]byte("{}"))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestOpenLoopCoordinatedOmissionSafe: with a 40ms server and a 1-wide
// inflight window, an offered rate of 100/s builds a backlog — and the
// recorded latencies must show it, because open-loop latency is measured
// from each request's *intended* send time, not from when the throttled
// dispatcher finally got to it. A coordinated-omission-blind harness
// would record every request at ~40ms here.
func TestOpenLoopCoordinatedOmissionSafe(t *testing.T) {
	const delay = 40 * time.Millisecond
	ts := stubServer(t, 1000, 4, delay)
	cfg := Config{
		BaseURL: ts.URL, Seed: 3, Mode: OpenPoisson,
		Rate: 100, Duration: 200 * time.Millisecond,
		MaxInflight: 1,
		Mix:         Mix{LookupFraction: 1},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 10 {
		t.Fatalf("only %d requests sent", res.Sent)
	}
	ok := res.MergedOK()
	if ok.Count() != res.Sent {
		t.Fatalf("%d ok of %d sent against an all-200 stub", ok.Count(), res.Sent)
	}
	// ~20 serialized 40ms services against a 200ms schedule: the last
	// request waited most of (sent-5)×40ms behind the backlog.
	if max := time.Duration(ok.Max()); max < 5*delay {
		t.Fatalf("max latency %v under a backlog — coordinated omission: "+
			"latency was measured from dispatch, not intended send", max)
	}
	if p50 := time.Duration(ok.Quantile(0.5)); p50 < delay+delay/2 {
		t.Fatalf("p50 %v ≈ service time despite saturation — backlog wait not charged", p50)
	}
}

// TestRunDeterministicRequestSequence: two runs with the same seed
// against a stub send the identical (endpoint, key, algorithm) sequence
// — asserted via the schedule the runner derives, and end-to-end by the
// per-endpoint totals.
func TestRunDeterministicRequestSequence(t *testing.T) {
	ts := stubServer(t, 2000, 4, 0)
	cfg := Config{
		BaseURL: ts.URL, Seed: 11, Mode: OpenPoisson,
		Rate: 400, Duration: 250 * time.Millisecond,
		Mix: Mix{LookupFraction: 0.5},
	}
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Sent != r2.Sent {
		t.Fatalf("sent %d vs %d across identical seeds", r1.Sent, r2.Sent)
	}
	if !reflect.DeepEqual(r1.Outcomes, r2.Outcomes) {
		t.Fatalf("outcome sets differ: %v vs %v", r1.Outcomes, r2.Outcomes)
	}
	s1, _ := BuildSchedule(cfg, 2000)
	s2, _ := BuildSchedule(cfg, 2000)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("schedules diverged")
	}
}

// TestReportValidate: the schema guard accepts a sound report and names
// what is wrong with a broken one.
func TestReportValidate(t *testing.T) {
	good := func() *Report {
		return &Report{
			Schema: ReportSchema,
			Host:   CurrentHost(),
			Seed:   1,
			DB:     DBInfo{Objects: 1000, D: 4},
			Mixes: []MixCurve{{
				Name: "lookup-heavy-zipf",
				Mode: OpenPoisson.String(),
				Points: []SweepPoint{
					{OfferedRate: 100, Sent: 200, Attempts: 200, P50Ns: 10, P90Ns: 20, P99Ns: 30},
					{OfferedRate: 200, Sent: 400, Attempts: 410, P50Ns: 15, P90Ns: 25, P99Ns: 60, Rate429: 0.1},
				},
			}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "nope/v0" }},
		{"missing host", func(r *Report) { r.Host = Host{} }},
		{"missing db", func(r *Report) { r.DB = DBInfo{} }},
		{"no mixes", func(r *Report) { r.Mixes = nil }},
		{"mix without points", func(r *Report) { r.Mixes[0].Points = nil }},
		{"zero rate", func(r *Report) { r.Mixes[0].Points[0].OfferedRate = 0 }},
		{"unordered quantiles", func(r *Report) { r.Mixes[0].Points[0].P50Ns = 99 }},
		{"impossible 429 rate", func(r *Report) { r.Mixes[0].Points[1].Rate429 = 1.5 }},
		{"attempts below sent", func(r *Report) { r.Mixes[0].Points[0].Attempts = 1 }},
	}
	for _, c := range cases {
		r := good()
		c.mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

// TestReportFileRoundTrip: WriteFile → ValidateFile round-trips, and a
// corrupted file fails.
func TestReportFileRoundTrip(t *testing.T) {
	r := &Report{
		Schema: ReportSchema, Host: CurrentHost(), Seed: 9,
		DB: DBInfo{Objects: 100, D: 2},
		Mixes: []MixCurve{{Name: "m", Points: []SweepPoint{
			{OfferedRate: 10, Sent: 5, Attempts: 5},
		}}},
	}
	path := t.TempDir() + "/BENCH_service.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file validated")
	}
}
