// GIS: a geographic store — the third application domain the paper's
// introduction cites. Land parcels (S) carry bounding boxes; survey
// observations (R) hold virtual pointers to their parcels. An STR-packed
// R-tree inside the parcel segment answers region queries, and the
// parallel pointer joins aggregate observations per parcel. The store is
// reopened between build and query to show the spatial index surviving
// with no pointer fixup, and a second rectangle set (flood-risk zones)
// is intersection-joined against the reopened tree by synchronized
// descent — sequentially and on the morsel pool — with both results
// checked against a brute-force scan.
//
// Run with: go run ./examples/gis
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"mmjoin/internal/exec"
	"mmjoin/internal/mstore"
)

// Parcel payload (after the 8-byte identity word): center x, y as
// float64 (the full box is reconstructed from a fixed half-extent).
const (
	parcelXOff = 8
	parcelYOff = 16
	halfExtent = 0.5
)

func main() {
	dir, err := os.MkdirTemp("", "mmjoin-gis")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const (
		d            = 4
		parcels      = 8000
		observations = 32000
		objSize      = 64
	)

	// Build parcels and observations; give each parcel a position on a
	// 100x100 map.
	db, err := mstore.CreateDB(filepath.Join(dir, "land"), d, observations, parcels, objSize, 17)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var entries []mstore.SpatialEntry
	for j := 0; j < d; j++ {
		for x := 0; x < db.S[j].Count(); x++ {
			obj := db.S[j].Object(x)
			px, py := rng.Float64()*100, rng.Float64()*100
			binary.LittleEndian.PutUint64(obj[parcelXOff:], math.Float64bits(px))
			binary.LittleEndian.PutUint64(obj[parcelYOff:], math.Float64bits(py))
			if j == 0 { // index partition 0's parcels spatially
				entries = append(entries, mstore.SpatialEntry{
					Rect: mstore.Rect{
						MinX: px - halfExtent, MinY: py - halfExtent,
						MaxX: px + halfExtent, MaxY: py + halfExtent,
					},
					Item: db.S[0].PtrAt(x),
				})
			}
		}
	}
	tree, err := mstore.BuildRTree(db.S[0].Segment(), entries, 16)
	if err != nil {
		log.Fatal(err)
	}
	db.S[0].Segment().SetAuxRoot(tree.Head())
	fmt.Printf("built: %d parcels (%d spatially indexed), %d observations; R-tree height %d\n",
		parcels, tree.Len(), observations, tree.Height())
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: the R-tree and all cross-segment pointers remain valid.
	db, err = mstore.OpenDB(filepath.Join(dir, "land"), d)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tree, err = mstore.OpenRTree(db.S[0].Segment(), db.S[0].Segment().AuxRoot())
	if err != nil {
		log.Fatal(err)
	}

	// Count observations per parcel with a pointer join.
	perParcel := map[mstore.SPtr]int{}
	for i := 0; i < d; i++ {
		for x := 0; x < db.R[i].Count(); x++ {
			perParcel[mstore.DecodeSPtr(db.R[i].Object(x))]++
		}
	}
	st, err := db.HybridHash(filepath.Join(dir, "tmp"), 8, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined %d observations with their parcels (hybrid-hash pointer join)\n", st.Pairs)

	// Region report: parcels in a window, with their observation counts,
	// via the persistent spatial index.
	window := mstore.Rect{MinX: 25, MinY: 25, MaxX: 35, MaxY: 35}
	found, obs := 0, 0
	tree.Search(window, func(e mstore.SpatialEntry) bool {
		found++
		obs += perParcel[mstore.SPtr{Part: 0, Off: e.Item}]
		return true
	})
	fmt.Printf("region (%.0f,%.0f)-(%.0f,%.0f): %d parcels, %d observations\n",
		window.MinX, window.MinY, window.MaxX, window.MaxY, found, obs)

	// Spatial join: this quarter's flood-risk zones arrive as a second
	// rectangle set; which parcels does each zone touch? The zones are
	// STR-packed into a scratch segment and intersection-joined against
	// the reopened parcel tree by synchronized descent — no linear scan
	// of either side.
	zseg, err := mstore.Create(filepath.Join(dir, "zones"), 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	defer zseg.Close()
	zrng := rand.New(rand.NewSource(23))
	const zones = 300
	zentries := make([]mstore.SpatialEntry, zones)
	for z := range zentries {
		zx, zy := zrng.Float64()*100, zrng.Float64()*100
		zentries[z] = mstore.SpatialEntry{
			Rect: mstore.Rect{MinX: zx, MinY: zy, MaxX: zx + 3, MaxY: zy + 3},
			Item: mstore.Ptr(z + 1),
		}
	}
	zref := append([]mstore.SpatialEntry(nil), zentries...)
	zoneTree, err := mstore.BuildRTree(zseg, zentries, 16)
	if err != nil {
		log.Fatal(err)
	}
	pairs, atRisk := 0, map[mstore.Ptr]bool{}
	tree.IntersectJoin(zoneTree, func(parcel, zone mstore.SpatialEntry) bool {
		pairs++
		atRisk[parcel.Item] = true
		return true
	})

	// Cross-check against the O(n·m) scan, rebuilding parcel boxes from
	// the mapped objects themselves.
	brute := 0
	for x := 0; x < db.S[0].Count(); x++ {
		obj := db.S[0].Object(x)
		px := math.Float64frombits(binary.LittleEndian.Uint64(obj[parcelXOff:]))
		py := math.Float64frombits(binary.LittleEndian.Uint64(obj[parcelYOff:]))
		box := mstore.Rect{MinX: px - halfExtent, MinY: py - halfExtent, MaxX: px + halfExtent, MaxY: py + halfExtent}
		for _, z := range zref {
			if box.Intersects(z.Rect) {
				brute++
			}
		}
	}
	if pairs != brute {
		log.Fatalf("spatial join found %d pairs, brute force %d", pairs, brute)
	}

	// The same join on the shared morsel pool: per-worker tallies folded
	// after the barrier must reproduce the sequential count.
	p := exec.NewPool(0)
	defer p.Close()
	perWorker := make([]int, p.Workers())
	if err := tree.ParallelIntersectJoin(context.Background(), p, zoneTree, func(w int, parcel, zone mstore.SpatialEntry) {
		perWorker[w]++
	}); err != nil {
		log.Fatal(err)
	}
	parPairs := 0
	for _, n := range perWorker {
		parPairs += n
	}
	if parPairs != pairs {
		log.Fatalf("parallel spatial join found %d pairs, sequential %d", parPairs, pairs)
	}
	fmt.Printf("spatial join: %d zone-parcel pairs (%d parcels at risk), parallel run agrees on %d workers\n",
		pairs, len(atRisk), p.Workers())
}
