package mstore

import (
	"sync"
	"sync/atomic"
)

// The planner's memory estimate is exactly that — an estimate. Under
// Zipf key skew, or when the db.Workload() sample the service planned
// against has gone stale, a single Grace/hybrid bucket can hold nearly
// all of R, and a probe that materializes its table regardless of the
// admission grant makes the service's memory budget a fiction. The
// machinery in this file makes every probe provably respect its grant,
// following the dynamic hybrid-hash playbook (per-bucket spill/restage,
// growth-triggered repartitioning, mid-join grant renegotiation):
//
//   - memLimiter meters every in-memory probe structure (hash tables,
//     sort handles) against a join-wide byte budget; concurrent probes
//     that would overshoot together wait their turn.
//   - A bucket whose table can never fit — even alone — first asks the
//     GrantNegotiator for more memory, and failing that is restaged:
//     re-partitioned into sub-buckets on disk until each fits.
//   - A bucket one hot key dominates cannot be split by restaging (every
//     reference names the same S object), so it falls back to a
//     streaming sorted-probe that never builds the table at all.
//
// All of it is gated, as every execution change in this repo, on
// bit-identical Pairs/Signature: the adaptations reorder work, and the
// join statistics fold as commutative sums.

// The counted in-memory footprint of one bucket's probe table is
// tableBytesFor (join.go): the flat open-addressing slot arrays at
// their real load factor plus the per-reference chain and sweep
// entries. The limiter's bound is over these counted bytes — the same
// accounting the grant-bound invariant tests measure.

// streamHandleBytes is the per-reference cost of the streaming probe's
// chunk handle array (one int32 index).
const streamHandleBytes = 4

// maxRestageFanout caps how many sub-buckets one restage pass creates;
// a bucket that overshoots further recurses instead of opening an
// unbounded number of temp files at once.
const maxRestageFanout = 64

// maxRestageDepth is a safety rail on restage recursion. The recursion
// provably terminates without it (every pass separates the span's min
// and max S index), but a rail keeps a future bucketing bug from
// turning into runaway temp-file creation.
const maxRestageDepth = 32

// GrantNegotiator lets a join that discovers mid-flight it was
// under-granted ask the admission layer for more memory instead of
// silently overshooting. Implementations must not block: a denied
// growth makes the operator restage or stream, both of which make
// progress under the original grant.
type GrantNegotiator interface {
	// TryGrow asks for bytes beyond the original grant, returning true
	// when the extra memory was charged to the caller's account.
	TryGrow(bytes int64) bool
	// GiveBack returns bytes previously obtained through TryGrow.
	GiveBack(bytes int64)
}

// JoinTelemetry counts one join's memory-adaptation events. All fields
// are atomics so concurrently probing morsels record without locks; a
// server folds them into its /stats counters after the join.
type JoinTelemetry struct {
	// TempFiles counts temporary relations actually created — with lazy
	// bucket materialization this is the number of non-empty buckets,
	// not D·K.
	TempFiles atomic.Int64
	// Restages counts oversized buckets re-partitioned into disk
	// sub-buckets; RestagedRefs the references rewritten doing so.
	Restages     atomic.Int64
	RestagedRefs atomic.Int64
	// StreamProbes counts buckets joined by the bounded streaming
	// fallback (hot-key buckets restaging cannot split).
	StreamProbes atomic.Int64
	// Renegotiations counts successful mid-join grant growths;
	// RenegotiationsDenied the growth requests the admission layer
	// refused; ExtraGrantBytes the total bytes obtained.
	Renegotiations       atomic.Int64
	RenegotiationsDenied atomic.Int64
	ExtraGrantBytes      atomic.Int64
	// PeakTableBytes is the high-water mark of concurrently reserved
	// probe memory (counted bytes). The grant-bound invariant is
	// PeakTableBytes ≤ grant + ExtraGrantBytes.
	PeakTableBytes atomic.Int64
	// RadixPasses is the partitioning pass count the bucketed joins
	// chose (radixPlan): 1 until K exceeds 2^RadixBits.
	RadixPasses atomic.Int64
}

// Fold merges another join's telemetry into t: every counter adds
// (including RadixPasses — passes are work performed, so shards' passes
// accumulate), while PeakTableBytes folds as a max, since each source's
// peak was measured against its own independent budget. A shard router
// folds per-shard telemetry into the request's shared struct this way.
func (t *JoinTelemetry) Fold(from *JoinTelemetry) {
	t.TempFiles.Add(from.TempFiles.Load())
	t.Restages.Add(from.Restages.Load())
	t.RestagedRefs.Add(from.RestagedRefs.Load())
	t.StreamProbes.Add(from.StreamProbes.Load())
	t.Renegotiations.Add(from.Renegotiations.Load())
	t.RenegotiationsDenied.Add(from.RenegotiationsDenied.Load())
	t.ExtraGrantBytes.Add(from.ExtraGrantBytes.Load())
	t.RadixPasses.Add(from.RadixPasses.Load())
	for {
		peak := from.PeakTableBytes.Load()
		cur := t.PeakTableBytes.Load()
		if peak <= cur || t.PeakTableBytes.CompareAndSwap(cur, peak) {
			return
		}
	}
}

// memLimiter enforces a join-wide byte budget over the in-memory
// structures the probes build. budget 0 means unbounded — reservations
// are accounted (so telemetry still reports the peak) but never denied
// and never wait.
type memLimiter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64
	used   int64
	extra  int64 // budget grown via neg, given back by close
	neg    GrantNegotiator
	tel    *JoinTelemetry
}

func newMemLimiter(budget int64, neg GrantNegotiator, tel *JoinTelemetry) *memLimiter {
	if budget < 0 {
		budget = 0
	}
	if tel == nil {
		tel = &JoinTelemetry{}
	}
	l := &memLimiter{budget: budget, neg: neg, tel: tel}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// bounded reports whether the limiter enforces a budget.
func (l *memLimiter) bounded() bool { return l.budget > 0 }

// budgetNow reads the current budget (it grows under renegotiation).
func (l *memLimiter) budgetNow() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.budget
}

// reserve charges need bytes against the budget. A reservation that
// fits the budget but not alongside the current holders waits for a
// release — holders never wait while holding, so this cannot deadlock.
// A reservation that could never fit (need exceeds even a renegotiated
// budget) returns false without charging; the caller must then shrink
// its appetite (restage or stream) instead.
func (l *memLimiter) reserve(need int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.budget > 0 && l.used+need > l.budget {
		if need > l.budget {
			want := need - l.budget
			if l.neg != nil && l.neg.TryGrow(want) {
				l.budget += want
				l.extra += want
				l.tel.Renegotiations.Add(1)
				l.tel.ExtraGrantBytes.Add(want)
				continue
			}
			if l.neg != nil {
				l.tel.RenegotiationsDenied.Add(1)
			}
			return false
		}
		l.cond.Wait()
	}
	l.used += need
	for {
		cur := l.tel.PeakTableBytes.Load()
		if l.used <= cur || l.tel.PeakTableBytes.CompareAndSwap(cur, l.used) {
			break
		}
	}
	return true
}

// release returns bytes reserved earlier and wakes waiting probes.
func (l *memLimiter) release(bytes int64) {
	l.mu.Lock()
	l.used -= bytes
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close gives every renegotiated byte back to the admission layer; Run
// defers it so the service's budget balances even on error paths.
func (l *memLimiter) close() {
	l.mu.Lock()
	extra := l.extra
	l.extra = 0
	l.budget -= extra
	l.mu.Unlock()
	if l.neg != nil && extra > 0 {
		l.neg.GiveBack(extra)
	}
}
