package join

import (
	"strings"
	"testing"
	"testing/quick"

	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/relation"
	"mmjoin/internal/sim"
	"mmjoin/internal/trace"
)

// smallCfg shrinks the disks so tests stay fast.
func smallCfg() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Disk.Blocks = 40000
	return cfg
}

func smallWorkload(nr int, seed int64) *relation.Workload {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = nr, nr
	spec.Seed = seed
	return relation.MustGenerate(spec)
}

func smallParams(w *relation.Workload, mem int64) Params {
	return Params{Workload: w, MRproc: mem, Stagger: true}
}

// run and mustRun execute through the Request API, the package's only
// entry point since the package-level Run/MustRun shims were removed.
func run(alg Algorithm, cfg machine.Config, prm Params) (*Result, error) {
	return Request{Algorithm: alg, Config: cfg, Params: prm}.Run()
}

func mustRun(alg Algorithm, cfg machine.Config, prm Params) *Result {
	return Request{Algorithm: alg, Config: cfg, Params: prm}.MustRun()
}

func TestAllAlgorithmsComputeTheSameJoin(t *testing.T) {
	w := smallWorkload(4000, 1)
	wantSig, wantPairs := w.JoinSignature()
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace, HybridHash, TraditionalGrace} {
		res, err := run(alg, smallCfg(), smallParams(w, 128<<10))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Pairs != wantPairs {
			t.Errorf("%v: %d pairs, want %d", alg, res.Pairs, wantPairs)
		}
		if res.Signature != wantSig {
			t.Errorf("%v: signature %x, want %x", alg, res.Signature, wantSig)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%v: non-positive elapsed %v", alg, res.Elapsed)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := smallWorkload(2000, 2)
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace, HybridHash, TraditionalGrace} {
		a := mustRun(alg, smallCfg(), smallParams(w, 96<<10))
		b := mustRun(alg, smallCfg(), smallParams(w, 96<<10))
		if a.Elapsed != b.Elapsed || a.DiskReads != b.DiskReads || a.DiskWrites != b.DiskWrites {
			t.Errorf("%v: non-deterministic: %v/%d/%d vs %v/%d/%d", alg,
				a.Elapsed, a.DiskReads, a.DiskWrites, b.Elapsed, b.DiskReads, b.DiskWrites)
		}
	}
}

func TestMoreMemoryNeverMuchSlower(t *testing.T) {
	w := smallWorkload(4000, 3)
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace} {
		lo := mustRun(alg, smallCfg(), smallParams(w, 64<<10))
		hi := mustRun(alg, smallCfg(), smallParams(w, 1<<20))
		if float64(hi.Elapsed) > 1.10*float64(lo.Elapsed) {
			t.Errorf("%v: high-memory run (%v) much slower than low-memory (%v)",
				alg, hi.Elapsed, lo.Elapsed)
		}
	}
}

func TestNestedLoopsMemorySensitivity(t *testing.T) {
	// Fig 5a: nested loops improves steeply with memory (random S access
	// becomes cached).
	w := smallWorkload(6000, 4)
	lo := mustRun(NestedLoops, smallCfg(), smallParams(w, 64<<10))
	hi := mustRun(NestedLoops, smallCfg(), smallParams(w, 2<<20))
	if float64(lo.Elapsed) < 1.3*float64(hi.Elapsed) {
		t.Errorf("nested loops not memory sensitive: lo=%v hi=%v", lo.Elapsed, hi.Elapsed)
	}
	if hi.DiskReads >= lo.DiskReads {
		t.Errorf("more memory should reduce reads: lo=%d hi=%d", lo.DiskReads, hi.DiskReads)
	}
}

func TestPhasesRecordedInOrder(t *testing.T) {
	w := smallWorkload(2000, 5)
	res := mustRun(SortMerge, smallCfg(), smallParams(w, 96<<10))
	wantOrder := []string{"setup", "pass0", "pass1", "pass2"}
	if len(res.Phases) < len(wantOrder) {
		t.Fatalf("phases: %v", res.Phases)
	}
	var last sim.Time
	for idx, name := range wantOrder {
		if res.Phases[idx].Name != name {
			t.Errorf("phase[%d] = %s, want %s", idx, res.Phases[idx].Name, name)
		}
		if res.Phases[idx].End < last {
			t.Errorf("phase %s ends before its predecessor", name)
		}
		last = res.Phases[idx].End
	}
	if res.Phases[len(res.Phases)-1].Name != "join" {
		t.Errorf("last phase = %s, want join", res.Phases[len(res.Phases)-1].Name)
	}
}

func TestSortMergeParameterRules(t *testing.T) {
	w := smallWorkload(6000, 6)
	cfg := smallCfg()
	mem := int64(96 << 10)
	res := mustRun(SortMerge, cfg, smallParams(w, mem))
	wantIRun := int(mem / (int64(w.Spec.RSize) + int64(cfg.HeapPtrBytes)))
	if res.IRun != wantIRun {
		t.Errorf("IRun = %d, want %d", res.IRun, wantIRun)
	}
	if res.NPass < 1 || res.LRun < 1 {
		t.Errorf("NPass=%d LRun=%d", res.NPass, res.LRun)
	}
	// LRUN must fit the last-pass fan-in limit M/(2B).
	if maxLast := int(mem / (2 * 4096)); res.LRun > maxLast && maxLast >= 2 {
		t.Errorf("LRun=%d exceeds NRUNLAST=%d", res.LRun, maxLast)
	}
}

func TestSortMergeMorePassesWithLessMemory(t *testing.T) {
	w := smallWorkload(8000, 7)
	lo := mustRun(SortMerge, smallCfg(), smallParams(w, 32<<10))
	hi := mustRun(SortMerge, smallCfg(), smallParams(w, 1<<20))
	if lo.NPass <= hi.NPass {
		t.Errorf("NPass lo=%d hi=%d: less memory should need more merge passes", lo.NPass, hi.NPass)
	}
	if hi.NPass != 1 {
		t.Errorf("ample memory should sort in one pass, got NPass=%d", hi.NPass)
	}
}

func TestGraceParameterRules(t *testing.T) {
	w := smallWorkload(6000, 8)
	mem := int64(64 << 10)
	res := mustRun(Grace, smallCfg(), smallParams(w, mem))
	if res.K < 1 {
		t.Fatalf("K = %d", res.K)
	}
	// K must make a bucket (plus fuzz) fit in memory.
	maxRS := 0
	for _, c := range w.RSCounts() {
		if c > maxRS {
			maxRS = c
		}
	}
	bucketBytes := float64(maxRS) * 128 / float64(res.K)
	if 1.2*bucketBytes > float64(mem)+float64(128*res.K) {
		t.Errorf("K=%d leaves bucket of %.0f bytes for %d memory", res.K, bucketBytes, mem)
	}
	if res.TSize < 16 {
		t.Errorf("TSize = %d", res.TSize)
	}
	// More memory ⇒ fewer buckets.
	big := mustRun(Grace, smallCfg(), smallParams(w, 1<<20))
	if big.K > res.K {
		t.Errorf("K with more memory = %d > %d", big.K, res.K)
	}
}

func TestGraceExplicitKAndTSizeHonored(t *testing.T) {
	w := smallWorkload(2000, 9)
	prm := smallParams(w, 128<<10)
	prm.K = 7
	prm.TSize = 64
	res := mustRun(Grace, smallCfg(), prm)
	if res.K != 7 || res.TSize != 64 {
		t.Errorf("K=%d TSize=%d, want 7/64", res.K, res.TSize)
	}
	if sig, _ := w.JoinSignature(); sig != res.Signature {
		t.Error("explicit K/TSIZE changed the join result")
	}
}

func TestStaggeringReducesContention(t *testing.T) {
	// §5.1: the offsets eliminate contention for the S partitions. The
	// naive order should be no faster.
	w := smallWorkload(6000, 10)
	stag := smallParams(w, 96<<10)
	naive := stag
	naive.Stagger = false
	a := mustRun(NestedLoops, smallCfg(), stag)
	b := mustRun(NestedLoops, smallCfg(), naive)
	if a.Signature != b.Signature {
		t.Fatal("staggering changed the join result")
	}
	if float64(a.Elapsed) > 1.02*float64(b.Elapsed) {
		t.Errorf("staggered (%v) slower than naive (%v)", a.Elapsed, b.Elapsed)
	}
}

func TestSyncPhasesCloseToUnsynchronized(t *testing.T) {
	// The paper found ≤ ~0.5% difference with per-phase synchronization
	// under uniform references; allow a few percent here.
	w := smallWorkload(6000, 11)
	plain := smallParams(w, 96<<10)
	synced := plain
	synced.SyncPhases = true
	a := mustRun(NestedLoops, smallCfg(), plain)
	b := mustRun(NestedLoops, smallCfg(), synced)
	if a.Signature != b.Signature {
		t.Fatal("synchronization changed the join result")
	}
	ratio := float64(b.Elapsed) / float64(a.Elapsed)
	if ratio < 0.95 || ratio > 1.10 {
		t.Errorf("sync/unsync elapsed ratio %.3f outside [0.95, 1.10]", ratio)
	}
}

func TestGBufferSizeTradesContextSwitches(t *testing.T) {
	w := smallWorkload(4000, 12)
	small := smallParams(w, 256<<10)
	small.G = 512 // a couple of objects per exchange
	big := smallParams(w, 256<<10)
	big.G = 64 << 10
	a := mustRun(NestedLoops, smallCfg(), small)
	b := mustRun(NestedLoops, smallCfg(), big)
	if a.ContextSwitches <= b.ContextSwitches {
		t.Errorf("small G should cost more context switches: %d vs %d",
			a.ContextSwitches, b.ContextSwitches)
	}
	if a.Signature != b.Signature {
		t.Error("G changed the join result")
	}
}

func TestSkewedWorkloadStillCorrect(t *testing.T) {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = 3000, 3000
	spec.Dist = relation.HotPartition
	spec.HotFrac = 0.5
	spec.Seed = 13
	w := relation.MustGenerate(spec)
	wantSig, wantPairs := w.JoinSignature()
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace} {
		res := mustRun(alg, smallCfg(), smallParams(w, 96<<10))
		if res.Signature != wantSig || res.Pairs != wantPairs {
			t.Errorf("%v wrong result under skew", alg)
		}
	}
}

func TestErrorCases(t *testing.T) {
	w := smallWorkload(2000, 14)
	if _, err := run(NestedLoops, smallCfg(), Params{Workload: nil, MRproc: 1 << 20}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := run(NestedLoops, smallCfg(), Params{Workload: w, MRproc: 100}); err == nil {
		t.Error("sub-page memory accepted")
	}
	badCfg := smallCfg()
	badCfg.D = 2 // mismatch with workload D=4
	if _, err := run(NestedLoops, badCfg, smallParams(w, 1<<20)); err == nil {
		t.Error("D mismatch accepted")
	}
	if _, err := run(Algorithm(42), smallCfg(), smallParams(w, 1<<20)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if NestedLoops.String() != "nested-loops" || SortMerge.String() != "sort-merge" ||
		Grace.String() != "grace" || Algorithm(9).String() == "" {
		t.Error("Algorithm.String broken")
	}
}

func TestSingleDiskDegenerate(t *testing.T) {
	// D=1: no pass 1, no partitioning traffic; all algorithms reduce to
	// their sequential forms and still produce the right join.
	spec := relation.DefaultSpec()
	spec.NR, spec.NS, spec.D = 2000, 2000, 1
	spec.Seed = 15
	w := relation.MustGenerate(spec)
	cfg := smallCfg()
	cfg.D = 1
	wantSig, wantPairs := w.JoinSignature()
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace} {
		res := mustRun(alg, cfg, smallParams(w, 128<<10))
		if res.Signature != wantSig || res.Pairs != wantPairs {
			t.Errorf("%v wrong result with D=1", alg)
		}
	}
}

// Property: all three algorithms agree with the canonical join for
// arbitrary seeds, sizes, memory, and distributions.
func TestQuickJoinEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	f := func(seed int64, rawN uint16, rawMem uint8, dist uint8) bool {
		spec := relation.DefaultSpec()
		spec.NR = int(rawN)%3000 + 100
		spec.NS = spec.NR
		spec.Seed = seed
		switch dist % 3 {
		case 1:
			spec.Dist = relation.Local
			spec.LocalFrac = 0.7
		case 2:
			spec.Dist = relation.HotPartition
			spec.HotFrac = 0.3
		}
		w := relation.MustGenerate(spec)
		mem := int64(rawMem)%512*1024 + 8192
		wantSig, wantPairs := w.JoinSignature()
		for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace, HybridHash, TraditionalGrace} {
			res := mustRun(alg, smallCfg(), smallParams(w, mem))
			if res.Signature != wantSig || res.Pairs != wantPairs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestHybridHashMatchesOtherAlgorithms(t *testing.T) {
	w := smallWorkload(4000, 21)
	wantSig, wantPairs := w.JoinSignature()
	for _, mem := range []int64{16 << 10, 96 << 10, 2 << 20} {
		res := mustRun(HybridHash, smallCfg(), smallParams(w, mem))
		if res.Signature != wantSig || res.Pairs != wantPairs {
			t.Errorf("hybrid-hash wrong result at mem=%d", mem)
		}
	}
}

func TestHybridHashDegeneratesWithAmpleMemory(t *testing.T) {
	// With MSproc covering all of S, everything joins immediately:
	// K = 0 overflow buckets, and hybrid beats Grace (no RS traffic).
	w := smallWorkload(6000, 22)
	mem := int64(2 << 20)
	hh := mustRun(HybridHash, smallCfg(), smallParams(w, mem))
	gr := mustRun(Grace, smallCfg(), smallParams(w, mem))
	if hh.K != 0 {
		t.Errorf("K = %d with ample memory, want 0", hh.K)
	}
	if hh.Elapsed >= gr.Elapsed {
		t.Errorf("hybrid (%v) should beat grace (%v) with ample memory", hh.Elapsed, gr.Elapsed)
	}
	if hh.DiskWrites >= gr.DiskWrites {
		t.Errorf("hybrid writes %d, grace writes %d", hh.DiskWrites, gr.DiskWrites)
	}
}

func TestHybridHashConvergesToGraceAtLowMemory(t *testing.T) {
	// With tiny memory the resident fraction vanishes and hybrid's cost
	// approaches Grace's.
	w := smallWorkload(6000, 23)
	mem := int64(12 << 10)
	hh := mustRun(HybridHash, smallCfg(), smallParams(w, mem))
	gr := mustRun(Grace, smallCfg(), smallParams(w, mem))
	ratio := float64(hh.Elapsed) / float64(gr.Elapsed)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("hybrid/grace elapsed ratio %.2f at scarce memory, want ~1", ratio)
	}
}

func TestTraditionalGraceComputesTheSameJoin(t *testing.T) {
	w := smallWorkload(4000, 31)
	wantSig, wantPairs := w.JoinSignature()
	res := mustRun(TraditionalGrace, smallCfg(), smallParams(w, 96<<10))
	if res.Pairs != wantPairs || res.Signature != wantSig {
		t.Errorf("traditional grace: %d pairs sig %x, want %d/%x",
			res.Pairs, res.Signature, wantPairs, wantSig)
	}
}

func TestPointerJoinBeatsTraditional(t *testing.T) {
	// The paper's headline: the virtual-pointer attribute eliminates
	// hashing and repartitioning S, so pointer-based Grace must beat the
	// value-based baseline clearly.
	w := smallWorkload(8000, 32)
	for _, mem := range []int64{64 << 10, 512 << 10} {
		ptr := mustRun(Grace, smallCfg(), smallParams(w, mem))
		trad := mustRun(TraditionalGrace, smallCfg(), smallParams(w, mem))
		if ptr.Signature != trad.Signature {
			t.Fatal("algorithms disagree on the join")
		}
		if float64(trad.Elapsed) < 1.2*float64(ptr.Elapsed) {
			t.Errorf("mem=%d: traditional (%v) should be clearly slower than pointer-based (%v)",
				mem, trad.Elapsed, ptr.Elapsed)
		}
	}
}

func TestResultInvariants(t *testing.T) {
	w := smallWorkload(4000, 41)
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace, HybridHash, TraditionalGrace} {
		res := mustRun(alg, smallCfg(), smallParams(w, 96<<10))
		if len(res.PerProc) != 4 {
			t.Fatalf("%v: PerProc has %d entries", alg, len(res.PerProc))
		}
		var max sim.Time
		for i, tm := range res.PerProc {
			if tm <= 0 {
				t.Errorf("%v: PerProc[%d] = %v", alg, i, tm)
			}
			if tm > max {
				max = tm
			}
		}
		if res.Elapsed != max {
			t.Errorf("%v: Elapsed %v != max PerProc %v", alg, res.Elapsed, max)
		}
		// A pager fault either reads disk or zero-fills; disk reads seen
		// by the pagers cannot exceed the drives' totals.
		if res.Faults < res.ZeroFills {
			t.Errorf("%v: faults %d < zero fills %d", alg, res.Faults, res.ZeroFills)
		}
		if res.DiskReads < res.Faults-res.ZeroFills {
			t.Errorf("%v: drive reads %d below pager disk faults %d",
				alg, res.DiskReads, res.Faults-res.ZeroFills)
		}
		if res.Algorithm != alg {
			t.Errorf("Algorithm field = %v", res.Algorithm)
		}
	}
}

func TestTraceRecordsAllProcsAndPhases(t *testing.T) {
	w := smallWorkload(2000, 42)
	prm := smallParams(w, 96<<10)
	tl := trace.New()
	prm.Trace = tl
	mustRun(Grace, smallCfg(), prm)
	procs := map[string]int{}
	for _, ev := range tl.Events() {
		procs[ev.Proc]++
	}
	if len(procs) != 4 {
		t.Fatalf("traced %d procs", len(procs))
	}
	for name, n := range procs {
		if n != 4 { // setup, pass0, pass1, probe
			t.Errorf("%s has %d events, want 4", name, n)
		}
	}
}

func TestMetricsCollectedDuringRun(t *testing.T) {
	w := smallWorkload(4000, 44)
	prm := smallParams(w, 64<<10)
	reg := metrics.New()
	prm.Metrics = reg
	prm.MetricsTick = 50 * sim.Millisecond
	res := mustRun(Grace, smallCfg(), prm)

	samples := reg.Samples()
	if len(samples) < 2 {
		t.Fatalf("sampler collected %d samples", len(samples))
	}
	// Sampling must not leak past the end of the run by more than a tick.
	lastAt := samples[len(samples)-1].At
	if lastAt > res.Elapsed+prm.MetricsTick {
		t.Errorf("last sample at %v, run ended %v: sampler not stopped", lastAt, res.Elapsed)
	}
	// Every layer must be represented in the sampled gauges.
	last := samples[len(samples)-1].Values
	var haveDisk, havePager, haveProc bool
	for name := range last {
		switch {
		case strings.HasPrefix(name, "disk0."):
			haveDisk = true
		case strings.HasPrefix(name, "vm.Rproc0."):
			havePager = true
		case strings.HasPrefix(name, "proc.Rproc0."):
			haveProc = true
		}
	}
	if !haveDisk || !havePager || !haveProc {
		t.Errorf("gauges missing a layer: disk=%v pager=%v proc=%v", haveDisk, havePager, haveProc)
	}
	// The last snapshot precedes the final I/Os, so its reads gauge is a
	// positive lower bound on the result's counter.
	var gaugeReads float64
	for name, v := range last {
		if strings.HasSuffix(name, ".reads") {
			gaugeReads += v
		}
	}
	if gaugeReads <= 0 || int64(gaugeReads) > res.DiskReads {
		t.Errorf("summed reads gauges %v outside (0, %d]", gaugeReads, res.DiskReads)
	}
	// Phase events mirror the trace: 4 procs x 4 phases.
	if got := len(reg.Events()); got != 16 {
		t.Errorf("metrics recorded %d phase events, want 16", got)
	}
}

func TestMetricsDoNotPerturbTiming(t *testing.T) {
	// Instrumentation must be an observer: an instrumented run and a plain
	// run are identical in virtual time and I/O.
	w := smallWorkload(2000, 45)
	plain := mustRun(Grace, smallCfg(), smallParams(w, 96<<10))
	prm := smallParams(w, 96<<10)
	prm.Metrics = metrics.New()
	instr := mustRun(Grace, smallCfg(), prm)
	if plain.Elapsed != instr.Elapsed || plain.DiskReads != instr.DiskReads ||
		plain.DiskWrites != instr.DiskWrites || plain.Signature != instr.Signature {
		t.Errorf("instrumented run diverged: %v/%d/%d vs %v/%d/%d",
			instr.Elapsed, instr.DiskReads, instr.DiskWrites,
			plain.Elapsed, plain.DiskReads, plain.DiskWrites)
	}
}

func TestDiskBreakdownSumsToServiceSum(t *testing.T) {
	w := smallWorkload(4000, 46)
	for _, alg := range []Algorithm{NestedLoops, SortMerge, Grace} {
		res := mustRun(alg, smallCfg(), smallParams(w, 64<<10))
		ds := res.Disk
		if sum := ds.SeekTime + ds.RotationTime + ds.TransferTime + ds.OverheadTime; sum != ds.ServiceSum {
			t.Errorf("%v: components sum %v != ServiceSum %v", alg, sum, ds.ServiceSum)
		}
		if ds.Reads != res.DiskReads || ds.Writes != res.DiskWrites {
			t.Errorf("%v: Disk stats %d/%d disagree with DiskReads/Writes %d/%d",
				alg, ds.Reads, ds.Writes, res.DiskReads, res.DiskWrites)
		}
		if ds.ServiceSum <= 0 {
			t.Errorf("%v: no service time recorded", alg)
		}
	}
}

func TestReserveClampedSurfacesScarcity(t *testing.T) {
	w := smallWorkload(6000, 47)
	// One page of memory: hash-table reservations cannot be met.
	tiny := mustRun(Grace, smallCfg(), smallParams(w, 4096))
	if tiny.ReserveClamped == 0 {
		t.Error("one-page run should report clamped reservations")
	}
	// The clamped run must still produce the correct join.
	if sig, pairs := w.JoinSignature(); tiny.Signature != sig || tiny.Pairs != pairs {
		t.Error("clamped run computed a wrong join")
	}
	ample := mustRun(Grace, smallCfg(), smallParams(w, 4<<20))
	if ample.ReserveClamped != 0 {
		t.Errorf("ample-memory run reports %d clamped reservations", ample.ReserveClamped)
	}
}

func TestPhaseIOCumulative(t *testing.T) {
	w := smallWorkload(4000, 43)
	res := mustRun(Grace, smallCfg(), smallParams(w, 64<<10))
	var prevR, prevW int64
	for _, ph := range res.Phases {
		if ph.Reads < prevR || ph.Writes < prevW {
			t.Errorf("phase %s I/O not cumulative: %d/%d after %d/%d",
				ph.Name, ph.Reads, ph.Writes, prevR, prevW)
		}
		prevR, prevW = ph.Reads, ph.Writes
	}
	last := res.Phases[len(res.Phases)-1]
	if last.Reads > res.DiskReads {
		t.Errorf("final phase reads %d exceed total %d", last.Reads, res.DiskReads)
	}
}

func TestRequestValidateFoldsDefaults(t *testing.T) {
	w := smallWorkload(1000, 9)
	req := Request{Algorithm: Grace, Config: smallCfg(), Params: smallParams(w, 96<<10)}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	if req.MSproc != req.MRproc {
		t.Errorf("MSproc not defaulted: %d", req.MSproc)
	}
	if req.G != int64(smallCfg().B()) {
		t.Errorf("G not defaulted: %d", req.G)
	}
	if req.Fuzz != 1.2 {
		t.Errorf("Fuzz not defaulted: %g", req.Fuzz)
	}
	// Idempotent: validating again changes nothing and still succeeds.
	before := req
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
	if req != before {
		t.Error("second Validate changed the request")
	}
	// Unknown algorithms are rejected before any machine is built.
	bad := Request{Algorithm: Algorithm(42), Config: smallCfg(), Params: smallParams(w, 96<<10)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
