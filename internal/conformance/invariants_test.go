package conformance

import (
	"math/rand"
	"reflect"
	"testing"

	"mmjoin/internal/disk"
	"mmjoin/internal/join"
	"mmjoin/internal/machine"
	"mmjoin/internal/metrics"
	"mmjoin/internal/model"
	"mmjoin/internal/relation"
	"mmjoin/internal/seg"
	"mmjoin/internal/sim"
	"mmjoin/internal/vm"
)

// smallSpec returns a workload small enough for the fast (-short) tier.
func smallSpec(objects, d int, seed int64) relation.Spec {
	spec := relation.DefaultSpec()
	spec.NR, spec.NS = objects, objects
	spec.D = d
	spec.Seed = seed
	return spec
}

func smallConfig(d int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.D = d
	cfg.Disk.Blocks = 40000
	return cfg
}

var allAlgorithms = []join.Algorithm{
	join.NestedLoops, join.SortMerge, join.Grace,
	join.HybridHash, join.TraditionalGrace,
}

// TestVirtualTimeDeterminism asserts the simulator's core contract: the
// same seed and configuration produce a bit-for-bit identical Result,
// down to every virtual-time counter.
func TestVirtualTimeDeterminism(t *testing.T) {
	for _, alg := range allAlgorithms {
		cfg := smallConfig(4)
		w := relation.MustGenerate(smallSpec(4000, 4, 3))
		run := func() *join.Result {
			return join.Request{
				Algorithm: alg,
				Config:    cfg,
				Params: join.Params{
					Workload: w,
					MRproc:   int64(0.04 * float64(int64(4000)*int64(w.Spec.RSize))),
					Stagger:  true,
				},
			}.MustRun()
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: two identical runs differ: %+v vs %+v", alg, a, b)
		}
	}
}

// TestWorkloadGenerationDeterminism asserts that relation.Generate is a
// pure function of its Spec.
func TestWorkloadGenerationDeterminism(t *testing.T) {
	spec := smallSpec(4000, 4, 9)
	spec.Dist = relation.Zipf
	spec.ZipfTheta = 1.5
	a := relation.MustGenerate(spec)
	b := relation.MustGenerate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Error("two generations from the same spec differ")
	}
}

// TestRunInvariantsAcrossRandomConfigs is the property layer: seeded
// random draws over algorithm, distribution, degree of parallelism,
// memory fraction, and replacement policy, each checked against every
// conservation law in Result.CheckInvariants (reference-join output
// equality, elapsed/per-proc consistency, phase monotonicity, disk
// service conservation, and fault accounting).
func TestRunInvariantsAcrossRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 12
	if testing.Short() {
		trials = 6
	}
	dists := []relation.Distribution{
		relation.Uniform, relation.Zipf, relation.Local, relation.HotPartition,
	}
	policies := []vm.Policy{vm.LRU, vm.FIFO, vm.Clock}
	for trial := 0; trial < trials; trial++ {
		alg := allAlgorithms[rng.Intn(len(allAlgorithms))]
		d := []int{2, 4}[rng.Intn(2)]
		spec := smallSpec(1000+rng.Intn(3000), d, rng.Int63n(1<<30))
		spec.Dist = dists[rng.Intn(len(dists))]
		spec.ZipfTheta = 1.0 + rng.Float64()
		spec.LocalFrac = 0.5 + 0.4*rng.Float64()
		spec.HotFrac = 0.2 + 0.4*rng.Float64()
		frac := 0.01 + 0.2*rng.Float64()
		w, err := relation.Generate(spec)
		if err != nil {
			t.Fatalf("trial %d: generate: %v", trial, err)
		}
		prm := join.Params{
			Workload: w,
			MRproc:   int64(frac * float64(int64(spec.NR)*int64(spec.RSize))),
			Stagger:  rng.Intn(2) == 0,
			Policy:   policies[rng.Intn(len(policies))],
		}
		res, err := join.Request{Algorithm: alg, Config: smallConfig(d), Params: prm}.Run()
		if err != nil {
			t.Fatalf("trial %d: %v D=%d frac=%.3f: %v", trial, alg, d, frac, err)
		}
		if err := res.CheckInvariants(w); err != nil {
			t.Errorf("trial %d: %v D=%d dist=%v frac=%.3f policy=%v: %v",
				trial, alg, d, spec.Dist, frac, prm.Policy, err)
		}
	}
}

// TestObserverNeutrality asserts that attaching the telemetry layer (a
// metrics registry with its virtual-time sampler) does not perturb the
// simulation: the Result with observation must equal the Result without.
func TestObserverNeutrality(t *testing.T) {
	cfg := smallConfig(4)
	w := relation.MustGenerate(smallSpec(4000, 4, 5))
	prm := join.Params{
		Workload: w,
		MRproc:   int64(0.03 * float64(int64(4000)*int64(w.Spec.RSize))),
		Stagger:  true,
	}
	for _, alg := range []join.Algorithm{join.NestedLoops, join.Grace} {
		plain := join.Request{Algorithm: alg, Config: cfg, Params: prm}.MustRun()
		observed := prm
		observed.Metrics = metrics.New()
		withObs := join.Request{Algorithm: alg, Config: cfg, Params: observed}.MustRun()
		if len(observed.Metrics.Samples()) == 0 {
			t.Fatalf("%v: observer attached but recorded no samples", alg)
		}
		if !reflect.DeepEqual(plain, withObs) {
			t.Errorf("%v: observation changed the run: %+v vs %+v", alg, plain, withObs)
		}
	}
}

// TestModelPredictionConsistency asserts the analytical model's own
// conservation law across all five algorithms: component times are
// non-negative and sum exactly to the predicted total.
func TestModelPredictionConsistency(t *testing.T) {
	cfg := smallConfig(4)
	calib := model.Calibrate(cfg, 500, 1)
	e := &modelExperiment{cfg: cfg, calib: calib}
	for _, alg := range allAlgorithms {
		for _, frac := range []float64{0.01, 0.05, 0.20, 0.60} {
			p, err := e.predict(t, alg, frac)
			if err != nil {
				t.Fatalf("%v at %.2f: %v", alg, frac, err)
			}
			if err := p.CheckConsistency(); err != nil {
				t.Errorf("%v at %.2f: %v", alg, frac, err)
			}
		}
	}
}

type modelExperiment struct {
	cfg   machine.Config
	calib model.Calibration
	w     *relation.Workload
}

func (e *modelExperiment) predict(t *testing.T, alg join.Algorithm, frac float64) (*model.Prediction, error) {
	t.Helper()
	if e.w == nil {
		e.w = relation.MustGenerate(smallSpec(4000, 4, 1))
	}
	spec := e.w.Spec
	maxDistinct := 0
	for _, n := range e.w.DistinctRefCounts() {
		if n > maxDistinct {
			maxDistinct = n
		}
	}
	in := model.Inputs{
		NR: int64(spec.NR), NS: int64(spec.NS),
		R: int64(spec.RSize), S: int64(spec.SSize), Ptr: int64(spec.PtrSize),
		D:         spec.D,
		Skew:      e.w.Skew(),
		DistinctS: int64(maxDistinct),
		MRproc:    int64(frac * float64(int64(spec.NR)*int64(spec.RSize))),
		Fuzz:      1.2,
	}
	in.MSproc = in.MRproc
	switch alg {
	case join.NestedLoops:
		return model.PredictNestedLoops(e.calib, in)
	case join.SortMerge:
		return model.PredictSortMerge(e.calib, in)
	case join.Grace:
		return model.PredictGrace(e.calib, in)
	case join.HybridHash:
		return model.PredictHybridHash(e.calib, in)
	default:
		return model.PredictTraditionalGrace(e.calib, in)
	}
}

// TestPagerInvariantsUnderRandomTraffic drives one pager with seeded
// random page traffic — touches, reads and writes across two segments,
// interleaved reservations, and segment flushes — and checks the
// pager's structural invariants after every step plus the no-lost-page
// quota bound (resident set ≤ frames).
func TestPagerInvariantsUnderRandomTraffic(t *testing.T) {
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	cfg.Blocks = 4000
	d := disk.MustNew(k, "d0", cfg)
	sys := seg.NewSystem(seg.DefaultSetupCost())
	mgr := seg.NewManager(sys, d)

	const frames = 24
	pg := vm.NewWithPolicy("pg", frames, vm.LRU)
	rng := rand.New(rand.NewSource(7))

	k.Spawn("driver", func(p *sim.Proc) {
		a := mgr.NewMap(p, "a", 64*int64(cfg.BlockBytes))
		b := mgr.NewMap(p, "b", 64*int64(cfg.BlockBytes))
		segs := []*seg.Segment{a, b}
		reserved := 0
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op < 7: // touch a random page, sometimes dirtying it
				s := segs[rng.Intn(2)]
				pg.TouchPage(p, s, rng.Intn(s.Pages()), rng.Intn(3) == 0)
			case op == 7 && reserved < frames/2: // pin frames
				reserved += pg.Reserve(p, 1+rng.Intn(4))
			case op == 8 && reserved > 0: // unpin
				n := 1 + rng.Intn(reserved)
				pg.Unreserve(n)
				reserved -= n
			default: // write back one segment
				pg.FlushSegment(p, segs[rng.Intn(2)])
			}
			if pg.Resident() > frames {
				t.Errorf("step %d: resident %d exceeds quota %d", step, pg.Resident(), frames)
			}
			if err := pg.CheckInvariants(); err != nil {
				t.Errorf("step %d: %v", step, err)
				return
			}
		}
		pg.FlushAll(p)
		pg.Unreserve(reserved)
		if err := pg.CheckInvariants(); err != nil {
			t.Errorf("after flush: %v", err)
		}
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if err := d.Stats().CheckConservation(); err != nil {
		t.Errorf("disk after run: %v", err)
	}
	st := pg.Stats()
	if st.Touches != st.Hits+st.Faults {
		t.Errorf("touches %d != hits %d + faults %d", st.Touches, st.Hits, st.Faults)
	}
}

// TestReDirtyDuringFlushNotLost pins the pageout daemon's
// re-dirty-during-flush rule: a block re-dirtied after the flusher has
// picked it up (but before its write completes) must be written a second
// time — deduplicating it against the in-flight batch would silently
// lose the second store. This is the regression test for the flusher's
// dedup-set handling: it fails if the dirty-set deletion moves back to
// after the batch's writes.
func TestReDirtyDuringFlushNotLost(t *testing.T) {
	k := sim.NewKernel()
	cfg := disk.DefaultConfig()
	cfg.Blocks = 4000
	d := disk.MustNew(k, "d0", cfg)

	const block = 100
	k.Spawn("writer", func(p *sim.Proc) {
		d.ScheduleWrite(p, block)
		// Yield briefly: the flusher picks the block up and starts its
		// multi-millisecond write, so the re-dirty below lands mid-flush.
		p.Advance(10 * sim.Microsecond)
		if d.DirtyQueued() != 1 {
			t.Errorf("flusher did not pick up the block (queued %d)", d.DirtyQueued())
		}
		d.ScheduleWrite(p, block)
		d.Drain(p)
		d.Close()
	})
	k.Run()
	if w := d.Stats().Writes; w != 2 {
		t.Errorf("re-dirtied block written %d times, want 2 (second store lost)", w)
	}
}
