package mstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// GrowCapacity extends the relation's data area in place to hold at
// least newCap objects, growing the backing segment as needed. It is
// only valid while the relation's data area is the segment's top
// allocation (always true for the throwaway relations the joins create,
// which allocate header then data and nothing else); virtual pointers
// into the relation stay valid because they are offsets.
func (r *Relation) GrowCapacity(newCap int) error {
	cur := r.Capacity()
	if newCap <= cur {
		return nil
	}
	end := (int64(r.data) + int64(cur)*r.size + allocAlign - 1) &^ (allocAlign - 1)
	if top := int64(r.seg.allocTop()); top != end {
		return fmt.Errorf("mstore: cannot grow relation in %s: data area [..%d) is not the top allocation (%d)",
			r.seg.Path(), end, top)
	}
	newEnd := (int64(r.data) + int64(newCap)*r.size + allocAlign - 1) &^ (allocAlign - 1)
	if err := r.seg.Grow(newEnd); err != nil {
		return err
	}
	r.seg.setAllocTop(Ptr(newEnd))
	r.seg.PutU64(r.hdr+8, uint64(newCap))
	return nil
}

// SetCount publishes the number of stored objects directly, for writers
// that fill slots out of band (Appender, slot scatter) instead of going
// through Append.
func (r *Relation) SetCount(n int) { r.seg.PutU64(r.hdr, uint64(n)) }

// Appender lets many pool workers append into one relation
// concurrently: each append claims a slot with a single atomic add and
// copies without locking, so the hot path replaces the old
// mutex-guarded bucket appends. Capacity overflow takes the write lock
// and grows the relation (remapping the segment), which is why every
// slot write holds the read lock — the mapping must not move under a
// copy in progress.
//
// Appends land in nondeterministic order under concurrency; callers
// must not depend on relation order (the joins fold order-independent
// sums, so they do not). Seal publishes the final count; until then the
// relation header's count is stale and Count/Object must not be used.
type Appender struct {
	rel *Relation
	mu  sync.RWMutex // read-held across slot writes, write-held to grow
	cap int64        // cached capacity, updated under mu
	n   atomic.Int64 // next free slot
}

// NewAppender wraps a relation for concurrent appends.
func NewAppender(rel *Relation) *Appender {
	return &Appender{rel: rel, cap: int64(rel.Capacity())}
}

// Relation returns the underlying relation (valid to read after Seal).
func (a *Appender) Relation() *Relation { return a.rel }

// Append claims the next slot and copies obj into it, growing the
// relation when the measured capacity was undersized.
func (a *Appender) Append(obj []byte) error {
	if int64(len(obj)) != a.rel.size {
		return fmt.Errorf("mstore: append of %d bytes to %d-byte relation", len(obj), a.rel.size)
	}
	idx := a.n.Add(1) - 1
	for {
		a.mu.RLock()
		if idx < a.cap {
			copy(a.rel.seg.Bytes(a.rel.PtrAt(int(idx)), a.rel.size), obj)
			a.mu.RUnlock()
			return nil
		}
		a.mu.RUnlock()
		a.mu.Lock()
		if idx >= a.cap {
			newCap := max(a.cap*2, idx+1, 16)
			if err := a.rel.GrowCapacity(int(newCap)); err != nil {
				a.mu.Unlock()
				return err
			}
			a.cap = int64(a.rel.Capacity())
		}
		a.mu.Unlock()
	}
}

// Len returns the number of appended objects so far.
func (a *Appender) Len() int { return int(a.n.Load()) }

// Seal publishes the appended count into the relation header. Call it
// only after every concurrent Append has returned (a pool-stage
// barrier); the relation is then safe for ordinary reads.
func (a *Appender) Seal() { a.rel.SetCount(int(a.n.Load())) }
