package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"mmjoin/internal/service"
)

// Check is one client-vs-server reconciliation equation.
type Check struct {
	Name   string `json:"name"`
	Client int64  `json:"client"`
	Server int64  `json:"server"`
}

// Reconciliation cross-checks the client's attempt-level accounting
// against the server's /stats counter deltas. When the client ran with
// no client-side timeout and was the server's only traffic source, every
// equation must balance exactly: each HTTP attempt the client made got a
// definite response, and each response class has exactly one server
// counter that admitted + rejected + timed-out accounting routed it to.
type Reconciliation struct {
	OK       bool     `json:"ok"`
	Checks   []Check  `json:"checks"`
	Problems []string `json:"problems,omitempty"`
}

// delta reads a counter's growth across the run.
func delta(before, after service.Stats, name string) int64 {
	return after.Counters[name] - before.Counters[name]
}

// Reconcile builds the reconciliation for one finished run.
func Reconcile(before, after service.Stats, res *Result) Reconciliation {
	res.mu.Lock()
	join := res.StatusByKind[KindJoin]
	lookup := res.StatusByKind[KindLookup]
	joinAttempts, lookupAttempts := int64(0), int64(0)
	for _, n := range join {
		joinAttempts += n
	}
	for _, n := range lookup {
		lookupAttempts += n
	}
	netErrs := res.NetErrors[KindJoin] + res.NetErrors[KindLookup]
	res.mu.Unlock()

	joinOKServer := int64(0)
	// Every executed join lands in a join_executed_* counter: single
	// stores resolve auto to a concrete algorithm first, while a sharded
	// store counts planner-routed requests under join_executed_auto
	// (each shard may pick a different algorithm).
	for _, alg := range DefaultJoinAlgs {
		joinOKServer += delta(before, after, "join_executed_"+alg)
	}
	rec := Reconciliation{Checks: []Check{
		{"join attempts == join_requests_total", joinAttempts, delta(before, after, "join_requests_total")},
		{"join 2xx == sum(join_executed_*)", join[200], joinOKServer},
		{"join 429 == rejected_saturated + rejected_deadline", join[429],
			delta(before, after, "rejected_saturated") + delta(before, after, "rejected_deadline")},
		{"join 400 == bad_requests", join[400], delta(before, after, "bad_requests")},
		{"join 413 == rejected_too_large", join[413], delta(before, after, "rejected_too_large")},
		{"join 503 == rejected_draining + join_abandoned", join[503],
			delta(before, after, "rejected_draining") + delta(before, after, "join_abandoned")},
		{"join 500 == errors_internal", join[500], delta(before, after, "errors_internal")},
		{"lookup attempts == lookups_total", lookupAttempts, delta(before, after, "lookups_total")},
		{"lookup 2xx == lookups_ok", lookup[200], delta(before, after, "lookups_ok")},
		{"lookup 400 == lookups_bad_request", lookup[400], delta(before, after, "lookups_bad_request")},
		{"lookup 404 == lookups_not_found", lookup[404], delta(before, after, "lookups_not_found")},
		{"lookup 500 == lookups_failed", lookup[500], delta(before, after, "lookups_failed")},
		{"lookup 503 == lookups_rejected_draining", lookup[503], delta(before, after, "lookups_rejected_draining")},
	}}
	rec.OK = true
	for _, c := range rec.Checks {
		if c.Client != c.Server {
			rec.OK = false
			rec.Problems = append(rec.Problems,
				fmt.Sprintf("%s: client %d != server %d", c.Name, c.Client, c.Server))
		}
	}
	if netErrs > 0 {
		rec.OK = false
		rec.Problems = append(rec.Problems, fmt.Sprintf(
			"%d transport errors: some attempts may or may not have reached the server, counts are advisory", netErrs))
	}
	if p := delta(before, after, "panics_recovered"); p != 0 {
		rec.OK = false
		rec.Problems = append(rec.Problems, fmt.Sprintf("%d handler panics recovered during the run", p))
	}
	return rec
}

// SweepPoint summarizes one offered-load point of a sweep — one sample
// of the p99-vs-offered-load and 429-rate-vs-offered-load curves.
type SweepPoint struct {
	OfferedRate float64 `json:"offered_rate_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int64   `json:"sent"`
	Attempts    int64   `json:"attempts"`
	Retries     int64   `json:"retries"`
	OK          int64   `json:"ok"`
	Throttled   int64   `json:"throttled"`   // final-outcome 429s
	Unavailable int64   `json:"unavailable"` // final-outcome 503s
	Errors      int64   `json:"errors"`      // 4xx/5xx others + net errors
	Rate429     float64 `json:"rate_429"`    // 429 responses / attempts

	// Latency of successful requests, measured from the intended send
	// time in open-loop mode (coordinated-omission-safe).
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
	// Per-endpoint p99 over successes.
	JoinP99Ns   int64 `json:"join_p99_ns"`
	LookupP99Ns int64 `json:"lookup_p99_ns"`

	// AchievedRPS is completed-OK per wall second.
	AchievedRPS float64 `json:"achieved_rps"`
	Reconciled  bool    `json:"reconciled"`
}

// Summarize reduces one run to its sweep point.
func Summarize(res *Result) SweepPoint {
	ok := res.MergedOK()
	pt := SweepPoint{
		OfferedRate: res.Config.Rate,
		DurationSec: res.Config.Duration.Seconds(),
		Sent:        res.Sent,
		Attempts:    res.Attempts,
		Retries:     res.Retries,
		OK:          res.OKCount(),
		Throttled:   res.Outcomes["join.throttled"] + res.Outcomes["lookup.throttled"],
		Unavailable: res.Outcomes["join.unavailable"] + res.Outcomes["lookup.unavailable"],
		Rate429:     res.Rate429(),
		P50Ns:       int64(ok.Quantile(0.50)),
		P90Ns:       int64(ok.Quantile(0.90)),
		P99Ns:       int64(ok.Quantile(0.99)),
		MaxNs:       int64(ok.Max()),
		JoinP99Ns:   int64(res.Latency(KindJoin, OutcomeOK).Quantile(0.99)),
		LookupP99Ns: int64(res.Latency(KindLookup, OutcomeOK).Quantile(0.99)),
		Reconciled:  res.Reconciliation.OK,
	}
	pt.Errors = pt.Sent - pt.OK - pt.Throttled - pt.Unavailable
	if s := res.Wall.Seconds(); s > 0 {
		pt.AchievedRPS = float64(pt.OK) / s
	}
	return pt
}

// RunSweep executes the same mix at each offered rate in turn, returning
// one curve point per rate. Points run back-to-back against the same
// server; each point's reconciliation brackets only its own traffic.
func RunSweep(ctx context.Context, base Config, rates []float64) ([]SweepPoint, []*Result, error) {
	if base.Mode == Closed {
		return nil, nil, fmt.Errorf("loadgen: sweeps are open-loop (offered load is the x-axis)")
	}
	var pts []SweepPoint
	var results []*Result
	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		res, err := Run(ctx, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("loadgen: sweep point rate=%g: %w", rate, err)
		}
		pts = append(pts, Summarize(res))
		results = append(results, res)
	}
	return pts, results, nil
}

// ReportSchema versions BENCH_service.json.
const ReportSchema = "mmjoin-bench-service/v1"

// Host stamps the report with the machine it was measured on — latency
// curves are only comparable against the same CPU budget.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentHost describes the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// MixCurve is one traffic mix's offered-load sweep.
type MixCurve struct {
	Name           string       `json:"name"`
	Mode           string       `json:"mode"`
	LookupFraction float64      `json:"lookup_fraction"`
	ZipfS          float64      `json:"zipf_s"`
	JoinAlgs       []string     `json:"join_algs"`
	MaxRetries     int          `json:"max_retries"`
	Points         []SweepPoint `json:"points"`
}

// DBInfo describes the served database.
type DBInfo struct {
	Objects int `json:"objects"`
	D       int `json:"d"`
}

// ServerInfo records the admission knobs the curves were measured under.
type ServerInfo struct {
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
	MaxQueue       int   `json:"max_queue"`
	Workers        int   `json:"workers"`
}

// Report is the BENCH_service.json document: SLO curves (p99 and 429
// rate vs offered load) per traffic mix, with the host, seed, and server
// knobs recorded so regressions are diffed honestly.
type Report struct {
	Schema string     `json:"schema"`
	Host   Host       `json:"host"`
	Seed   int64      `json:"seed"`
	DB     DBInfo     `json:"db"`
	Server ServerInfo `json:"server"`
	Note   string     `json:"note,omitempty"`
	Mixes  []MixCurve `json:"mixes"`
}

// Validate checks the report's structural soundness: schema and host
// recorded, at least one mix with at least one point, and every point
// internally consistent (positive offered rate, ordered quantiles,
// 429 rate within [0,1]).
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.Host.GoVersion == "" || r.Host.NumCPU < 1 || r.Host.GOMAXPROCS < 1 {
		return fmt.Errorf("host info missing: %+v", r.Host)
	}
	if r.DB.Objects < 1 || r.DB.D < 1 {
		return fmt.Errorf("db info missing: %+v", r.DB)
	}
	if len(r.Mixes) == 0 {
		return fmt.Errorf("no mixes")
	}
	for _, m := range r.Mixes {
		if m.Name == "" {
			return fmt.Errorf("unnamed mix")
		}
		if len(m.Points) == 0 {
			return fmt.Errorf("mix %q has no points", m.Name)
		}
		for i, p := range m.Points {
			if p.OfferedRate <= 0 {
				return fmt.Errorf("mix %q point %d: offered rate %g", m.Name, i, p.OfferedRate)
			}
			if p.Sent < 0 || p.Attempts < p.Sent {
				return fmt.Errorf("mix %q point %d: attempts %d < sent %d", m.Name, i, p.Attempts, p.Sent)
			}
			if !(p.P50Ns <= p.P90Ns && p.P90Ns <= p.P99Ns) {
				return fmt.Errorf("mix %q point %d: quantiles unordered p50=%d p90=%d p99=%d",
					m.Name, i, p.P50Ns, p.P90Ns, p.P99Ns)
			}
			if p.Rate429 < 0 || p.Rate429 > 1 {
				return fmt.Errorf("mix %q point %d: rate_429 %g outside [0,1]", m.Name, i, p.Rate429)
			}
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("loadgen: refusing to write invalid report: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateFile parses and validates a written report — the CI smoke's
// schema check.
func ValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return r.Validate()
}

// MixCurveFor assembles one mix's curve metadata from its config.
func MixCurveFor(name string, cfg Config, pts []SweepPoint) MixCurve {
	return MixCurve{
		Name:           name,
		Mode:           cfg.Mode.String(),
		LookupFraction: cfg.Mix.LookupFraction,
		ZipfS:          cfg.Mix.ZipfS,
		JoinAlgs:       cfg.Mix.JoinAlgs,
		MaxRetries:     cfg.MaxRetries,
		Points:         pts,
	}
}
