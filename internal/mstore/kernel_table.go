package mstore

import "encoding/binary"

// The flat probe table replaces the per-bucket Go map of the probe
// stage. Layout, per bucket of n references:
//
//	heads [slots]int32  — open-addressing slot → chain head (ref index)
//	keys  [slots]Ptr    — slot → the S offset stored there
//	next  [n]int32      — ref index → next ref sharing the key
//	dkeys [≤n]Ptr       — the distinct S offsets, ascending after build
//	dhead [≤n]int32     — chain head per distinct key
//
// with power-of-two slots at ≤3/4 load factor and linear probing. All
// five arrays are carved from one worker's reusable probeArena, so the
// steady-state probe path performs zero allocations (the go-bench suite
// asserts 0 allocs/op); a Go map allocated per bucket is churn the GC
// pays for on every one of the D·K probe tasks.
//
// Reference indexes are int32 — a single bucket is limited to 2^31
// references, the same bound the sort-merge and stream-probe handle
// arrays already impose (a bucket that size would need a ≥32 GiB grant
// to build a table at all).
type probeArena struct {
	heads []int32
	keys  []Ptr
	next  []int32
	dkeys []Ptr
	dhead []int32
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growPtr(s []Ptr, n int) []Ptr {
	if cap(s) < n {
		return make([]Ptr, n)
	}
	return s[:n]
}

// tableSlots is the open-addressing slot count for n references: the
// smallest power of two holding n at ≤3/4 load factor (minimum 8).
func tableSlots(n int) int64 {
	s := int64(8)
	for s*3 < int64(n)*4 {
		s <<= 1
	}
	return s
}

// hashPtr mixes an S offset into the slot distribution. Offsets are
// multiples of the object size, so the identity's low bits are
// degenerate; a Fibonacci multiply plus a fold spreads them.
func hashPtr(p Ptr) uint64 {
	x := uint64(p) * 0x9e3779b97f4a7c15
	return x ^ (x >> 29)
}

// sortKeyedHeads heap-sorts the parallel (keys, heads) arrays by key,
// in place and without closures, so the distinct-key sweep stays
// allocation-free.
func sortKeyedHeads(keys []Ptr, heads []int32) {
	n := len(keys)
	for i := n/2 - 1; i >= 0; i-- {
		siftKeyedHeads(keys, heads, i, n)
	}
	for end := n - 1; end > 0; end-- {
		keys[0], keys[end] = keys[end], keys[0]
		heads[0], heads[end] = heads[end], heads[0]
		siftKeyedHeads(keys, heads, 0, end)
	}
}

func siftKeyedHeads(keys []Ptr, heads []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && keys[child+1] > keys[child] {
			child++
		}
		if keys[root] >= keys[child] {
			return
		}
		keys[root], keys[child] = keys[child], keys[root]
		heads[root], heads[child] = heads[child], heads[root]
		root = child
	}
}

// probeFlat joins one sealed bucket through a flat table carved from
// the worker's arena. Build chains the references per distinct S
// offset; the sweep orders the distinct offsets ascending so each S
// object is read once, sequentially; the probe runs in batches — the
// gather loop issues a batch of S-side reads back-to-back before the
// fold loop walks each offset's chain. Chain order within a key differs
// from the old map kernel (prepend vs append), which the commutative
// Signature fold makes invisible.
func (k *joinKernel) probeFlat(a *probeArena, rel *Relation, st *JoinStats) {
	n := rel.Count()
	if n == 0 {
		return
	}
	view, base, size := rel.seg.data, int64(rel.data), rel.size
	slots := int(tableSlots(n))
	mask := uint64(slots - 1)
	a.heads = grow32(a.heads, slots)
	a.keys = growPtr(a.keys, slots)
	a.next = grow32(a.next, n)
	heads, keys, next := a.heads, a.keys, a.next
	for i := range heads {
		heads[i] = -1
	}
	distinct := 0
	for x := 0; x < n; x++ {
		key := Ptr(binary.LittleEndian.Uint64(view[base+int64(x)*size+4:]))
		h := hashPtr(key) & mask
		for {
			head := heads[h]
			if head < 0 {
				heads[h] = int32(x)
				keys[h] = key
				next[x] = -1
				distinct++
				break
			}
			if keys[h] == key {
				next[x] = head
				heads[h] = int32(x)
				break
			}
			h = (h + 1) & mask
		}
	}

	a.dkeys = growPtr(a.dkeys, distinct)
	a.dhead = grow32(a.dhead, distinct)
	dkeys, dhead := a.dkeys, a.dhead
	i := 0
	for h := 0; h < slots; h++ {
		if heads[h] >= 0 {
			dkeys[i], dhead[i] = keys[h], heads[h]
			i++
		}
	}
	sortKeyedHeads(dkeys, dhead)

	// Every reference in a bucket names one S partition; read it off the
	// first record.
	sview := k.sv[binary.LittleEndian.Uint32(view[base:])]
	batch := k.batch
	pairs := int64(0)
	var sw [maxProbeBatch]uint64
	for lo := 0; lo < distinct; lo += batch {
		hi := min(lo+batch, distinct)
		for i := lo; i < hi; i++ { // gather
			sw[i-lo] = binary.LittleEndian.Uint64(sview[dkeys[i]:])
		}
		for i := lo; i < hi; i++ { // fold: walk the key's chain
			w := sw[i-lo]
			for x := dhead[i]; x >= 0; x = next[x] {
				rid := binary.LittleEndian.Uint64(view[base+int64(x)*size+ridOffset:])
				st.Signature += pairHash(rid, w)
				pairs++
			}
		}
	}
	st.Pairs += pairs
}
