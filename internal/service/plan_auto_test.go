package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"mmjoin/internal/join"
)

// TestAutoAgreesWithPlanner: the service's "auto" algorithm selection
// must be exactly the library planner's ChooseFor verdict on the same
// workload and per-partition memory — the HTTP layer adds admission and
// execution, never a different plan.
func TestAutoAgreesWithPlanner(t *testing.T) {
	s := newTestServer(t, 1500, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, grant := range []int64{64 << 10, 256 << 10, 4 << 20} {
		resp, jr := postJoin(t, ts, JoinRequest{Algorithm: "auto", MemBytes: grant})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("grant %d: status %d", grant, resp.StatusCode)
		}
		choice, err := s.pl.ChooseFor(join.Request{
			Config: s.sim,
			Params: join.Params{Workload: s.w, MRproc: grant / int64(s.cfg.D)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if jr.Algorithm != choice.Best.Algorithm.String() {
			t.Errorf("grant %d: service auto picked %s, planner library picks %v",
				grant, jr.Algorithm, choice.Best.Algorithm)
		}
		if jr.PredictedNs != int64(choice.Best.Predicted) {
			t.Errorf("grant %d: predicted %d ns, planner says %d ns",
				grant, jr.PredictedNs, int64(choice.Best.Predicted))
		}
		if len(jr.Plan) != len(choice.Candidates) {
			t.Fatalf("grant %d: %d plan entries, planner costed %d candidates",
				grant, len(jr.Plan), len(choice.Candidates))
		}
		for i, c := range choice.Candidates {
			if jr.Plan[i].Algorithm != c.Algorithm.String() {
				t.Errorf("grant %d: plan[%d] = %s, want %v", grant, i, jr.Plan[i].Algorithm, c.Algorithm)
			}
		}
	}
}
